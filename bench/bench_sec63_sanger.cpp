// Reproduces the §6.3 comparison with Sanger: equal PE count (1024) and
// frequency; Sanger pays a quadratic low-precision prediction pass and runs
// the surviving irregular pattern at 55-75 % utilization, while SALO's
// static hybrid patterns need no prediction and sustain higher utilization.
#include <iostream>

#include "common/table.hpp"
#include "model/salo_model.hpp"
#include "model/sanger.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;
    const SaloConfig config;
    const SangerConfig sanger_config;  // 64x16, auto utilization

    std::cout << "=== Section 6.3: comparison with Sanger ===\n\n";
    AsciiTable table({"Workload", "Sanger predict (ms)", "Sanger attn (ms)",
                      "Sanger total (ms)", "SALO (ms)", "Speedup", "paper"});
    double sum = 0.0;
    for (const auto& w : paper_workloads()) {
        const auto sanger = sanger_estimate(sanger_config, w);
        const auto salo = estimate_layer(w, config);
        const double speedup = sanger.latency_ms(1.0) / salo.latency_ms;
        sum += speedup;
        table.add_row({w.name, fmt(sanger.prediction_cycles / 1e6, 3),
                       fmt(sanger.attention_cycles / 1e6, 3),
                       fmt(sanger.latency_ms(1.0), 3), fmt(salo.latency_ms, 3),
                       fmt(speedup, 2) + "x", w.name == std::string("Longformer")
                                                  ? "1.33x"
                                                  : "-"});
    }
    table.add_row({"Average", "-", "-", "-", "-", fmt(sum / 3.0, 2) + "x", "-"});
    table.print();

    std::cout << "\n--- PE utilization vs sparsity (paper: Sanger 55-75 %, SALO >75 %) ---\n\n";
    AsciiTable util({"Workload", "Sparsity", "Sanger utilization", "SALO occupancy"});
    for (const auto& w : paper_workloads()) {
        const auto plan = schedule(w.pattern, config.geometry, w.head_dim,
                                   config.schedule_options);
        util.add_row({w.name, fmt(w.pattern.sparsity(), 3),
                      fmt(sanger_utilization(w.pattern.sparsity()) * 100.0, 1) + "%",
                      fmt(plan.stats.slot_occupancy() * 100.0, 1) + "%"});
    }
    util.print();

    std::cout << "\nNote: Sanger's prediction pass is quadratic in n regardless of\n"
                 "sparsity, which is what degrades it on long sequences (n=4096).\n";
    return 0;
}
