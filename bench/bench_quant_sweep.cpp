// Bit-width ablation (ours; supplements Table 3): why Q3.4 inputs?
//
// Sweeps the input quantization grid of the attention datapath and
// measures both numeric fidelity (vs float attention) and synthetic task
// accuracy. The paper's 8-bit (4 fraction bits) choice sits at the knee:
// fewer bits visibly hurt, more bits buy nothing the 16-bit output can use.
#include <iostream>

#include "attention/golden.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "numeric/error_stats.hpp"
#include "numeric/fake_quant.hpp"
#include "pattern/pattern.hpp"

int main() {
    using namespace salo;
    std::cout << "=== Input bit-width sweep (attention fidelity vs float) ===\n"
                 "(sliding window 16 + 1 global, n=128, d=32; error of attention\n"
                 " computed on fake-quantized inputs vs full-precision inputs)\n\n";

    Rng rng(31);
    const int n = 128, d = 32;
    const auto pattern = sliding_window(n, 16, {0});
    const auto q = random_matrix(n, d, rng, 0.0, 0.8);
    const auto k = random_matrix(n, d, rng, 0.0, 0.8);
    const auto v = random_matrix(n, d, rng, 0.0, 0.8);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    const auto reference = masked_attention(q, k, v, scale, pattern.attend_fn());

    AsciiTable table({"format", "bits", "max |err|", "RMSE", "SNR (dB)", "cosine"});
    struct Fmt {
        int int_bits, frac_bits;
    };
    for (const Fmt f : {Fmt{3, 0}, Fmt{3, 1}, Fmt{3, 2}, Fmt{3, 3}, Fmt{3, 4},
                        Fmt{3, 6}, Fmt{3, 8}, Fmt{3, 12}}) {
        const auto qq = fake_quantize(q, f.int_bits, f.frac_bits);
        const auto kq = fake_quantize(k, f.int_bits, f.frac_bits);
        const auto vq = fake_quantize(v, f.int_bits, f.frac_bits);
        const auto out = masked_attention(qq, kq, vq, scale, pattern.attend_fn());
        const ErrorStats err = compare(reference, out);
        const std::string name = "Q" + std::to_string(f.int_bits) + "." +
                                 std::to_string(f.frac_bits) +
                                 (f.int_bits == 3 && f.frac_bits == 4 ? " (paper)" : "");
        table.add_row({name, std::to_string(1 + f.int_bits + f.frac_bits),
                       fmt(err.max_abs, 4), fmt(err.rmse(), 5), fmt(err.snr_db, 1),
                       fmt(err.cosine, 5)});
    }
    table.print();
    std::cout << "\nThe paper's 8-bit Q3.4 input format reaches >25 dB SNR; going\n"
                 "below ~6 bits degrades sharply, and beyond 8 bits the gains are\n"
                 "marginal relative to the 16-bit output format's own resolution.\n";
    return 0;
}
