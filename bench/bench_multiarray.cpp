// Multi-array SALO scaling under shared-memory contention — the co-sim
// subsystem's flagship experiment and its correctness gate.
//
// Sweeps 1/2/4/8 arrays x 1/2/4 memory channels over the paper workloads
// (Longformer-Base-4096 and ViL stage 1), distributing attention heads
// round-robin over the arrays after a seeded shuffle. Every configuration
// is simulated on the deterministic event kernel (src/cosim/) with banked
// memory and a shared writeback bus.
//
// The process exits non-zero unless BOTH hold:
//   (a) closed-form parity — every single-array co-simulated total equals
//       the TileCostAccountant recurrence bit-for-bit (and shows zero
//       fetch/writeback stalls);
//   (b) determinism — every configuration, run twice, produces identical
//       report fingerprints.
//
//   bench_multiarray [--smoke] [--seed N] [--json <path>]
//
// --smoke shrinks the workloads and the sweep for CI (wired as the ctest
// `cosim_multiarray_smoke`); --json writes BENCH_multiarray.json (CMake
// target `bench_multiarray_json`).
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "cosim/system.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/tile_costs.hpp"
#include "workload/workloads.hpp"

namespace {

using salo::AttentionWorkload;
using salo::Rng;
using salo::SaloConfig;
using salo::SchedulePlan;
using salo::TileCost;
using salo::TileCostParams;
using salo::cosim::CosimConfig;
using salo::cosim::CosimReport;
using salo::cosim::MultiArraySystem;
using salo::cosim::RunState;

struct ConfigResult {
    int arrays = 0;
    int channels = 0;
    std::int64_t makespan = 0;
    std::int64_t max_array_cycles = 0;
    double speedup_vs_1 = 0.0;
    double mem_busy_frac = 0.0;
    std::int64_t bank_conflicts = 0;
    std::int64_t channel_conflicts = 0;
    std::int64_t mem_wait = 0;
    std::int64_t fetch_stall = 0;
    std::int64_t wb_stall = 0;
    std::uint64_t fingerprint = 0;
};

struct WorkloadResult {
    std::string name;
    int n = 0, heads = 0, head_dim = 0;
    std::int64_t tiles_per_head = 0;
    std::int64_t closed_form = 0;  ///< single-array sequential reference
    std::vector<ConfigResult> configs;
};

/// Head order for the tile distribution: seeded Fisher-Yates shuffle, so
/// multi-array load balance is randomized but reproducible.
std::vector<int> shuffled_heads(int heads, std::uint64_t seed) {
    std::vector<int> order(static_cast<std::size_t>(heads));
    for (int h = 0; h < heads; ++h) order[static_cast<std::size_t>(h)] = h;
    Rng rng(seed);
    for (int i = heads - 1; i > 0; --i) {
        const int j = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(i + 1)));
        std::swap(order[static_cast<std::size_t>(i)], order[static_cast<std::size_t>(j)]);
    }
    return order;
}

/// The per-array tile sequences for `num_arrays`: heads assigned round-robin
/// in shuffled order, each head's tiles kept contiguous in schedule order.
std::vector<std::vector<TileCost>> distribute(const std::vector<TileCost>& head_costs,
                                              const std::vector<int>& head_order,
                                              int num_arrays) {
    std::vector<std::vector<TileCost>> queues(static_cast<std::size_t>(num_arrays));
    for (std::size_t i = 0; i < head_order.size(); ++i) {
        auto& q = queues[i % static_cast<std::size_t>(num_arrays)];
        q.insert(q.end(), head_costs.begin(), head_costs.end());
    }
    return queues;
}

CosimReport simulate(const CosimConfig& config,
                     const std::vector<std::vector<TileCost>>& queues) {
    MultiArraySystem system(config);
    for (int a = 0; a < config.num_arrays; ++a)
        for (const TileCost& cost : queues[static_cast<std::size_t>(a)])
            system.enqueue(a, cost);
    return system.run();
}

}  // namespace

int main(int argc, char** argv) {
    bool smoke = false;
    std::uint64_t seed = 42;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = static_cast<std::uint64_t>(std::stoull(argv[++i]));
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
        else {
            std::cerr << "usage: bench_multiarray [--smoke] [--seed N] [--json path]\n";
            return 2;
        }
    }

    std::vector<AttentionWorkload> workloads;
    if (smoke) {
        workloads.push_back(salo::longformer_small(256, 64, 4, 32, 1));
        workloads.push_back(AttentionWorkload{"vil-small-10x10",
                                              salo::vil_2d(10, 10, 5, 5, 1),
                                              /*heads=*/2, /*head_dim=*/32,
                                              /*window=*/25, /*paper_sparsity=*/0.0});
    } else {
        workloads.push_back(salo::longformer_base_4096());
        workloads.push_back(salo::vil_stage1());
    }
    const std::vector<int> array_counts = smoke ? std::vector<int>{1, 2}
                                                : std::vector<int>{1, 2, 4, 8};
    const std::vector<int> channel_counts = smoke ? std::vector<int>{1, 2}
                                                  : std::vector<int>{1, 2, 4};

    const SaloConfig salo_config;  // paper-default geometry and latencies
    bool ok = true;
    std::vector<WorkloadResult> results;

    for (const AttentionWorkload& w : workloads) {
        const SchedulePlan plan = salo::schedule(w.pattern, salo_config.geometry,
                                                 w.head_dim, salo_config.schedule_options);
        const TileCostParams params = salo_config.tile_cost_params(w.head_dim);
        const std::vector<TileCost> head_costs = salo::plan_tile_costs(plan, params);
        const std::vector<int> head_order = shuffled_heads(w.heads, seed);

        WorkloadResult wr;
        wr.name = w.name;
        wr.n = w.n();
        wr.heads = w.heads;
        wr.head_dim = w.head_dim;
        wr.tiles_per_head = static_cast<std::int64_t>(head_costs.size());

        // Sequential single-array reference: all heads on one array, in the
        // same shuffled order the distribution uses.
        const auto single_queue = distribute(head_costs, head_order, 1);
        wr.closed_form = salo::closed_form_cycles(single_queue[0], params);

        std::printf("%-24s n=%d heads=%d d=%d tiles/head=%lld closed-form=%lld\n",
                    w.name.c_str(), wr.n, wr.heads, wr.head_dim,
                    static_cast<long long>(wr.tiles_per_head),
                    static_cast<long long>(wr.closed_form));

        for (int channels : channel_counts) {
            std::int64_t base_makespan = 0;
            for (int arrays : array_counts) {
                CosimConfig config;
                config.num_arrays = arrays;
                config.costs = params;
                config.memory.num_channels = channels;
                config.bus.beat_bytes = salo_config.bus_bytes_per_cycle;
                // The bandwidth sweep widens both directions together: the
                // output bus gains one lane per memory channel.
                config.bus.beats_per_cycle = channels;

                const auto queues = distribute(head_costs, head_order, arrays);
                const CosimReport report = simulate(config, queues);
                const CosimReport replay = simulate(config, queues);

                ConfigResult cr;
                cr.arrays = arrays;
                cr.channels = channels;
                cr.makespan = report.makespan_cycles;
                cr.max_array_cycles = report.max_array_cycles();
                cr.bank_conflicts = report.memory.bank_conflicts;
                cr.channel_conflicts = report.memory.channel_conflicts;
                cr.mem_busy_frac =
                    report.makespan_cycles == 0
                        ? 0.0
                        : static_cast<double>(report.memory.busy_cycles) /
                              static_cast<double>(report.makespan_cycles);
                for (const auto& a : report.arrays) {
                    cr.mem_wait += a.mem_wait_cycles;
                    cr.fetch_stall += a.fetch_stall_cycles;
                    cr.wb_stall += a.wb_stall_cycles;
                }
                cr.fingerprint = report.fingerprint();
                if (arrays == 1) base_makespan = report.makespan_cycles;
                cr.speedup_vs_1 =
                    report.makespan_cycles == 0
                        ? 0.0
                        : static_cast<double>(base_makespan) /
                              static_cast<double>(report.makespan_cycles);

                if (report.final_state != RunState::kIdle) {
                    std::printf("  FAIL: %da/%dch ended %s\n", arrays, channels,
                                salo::cosim::to_string(report.final_state));
                    for (const auto& name : report.stuck)
                        std::printf("    stuck: %s\n", name.c_str());
                    ok = false;
                }
                // Gate (b): bit-determinism for a fixed seed/config.
                if (replay.fingerprint() != cr.fingerprint) {
                    std::printf("  FAIL: %da/%dch not deterministic (%016llx vs %016llx)\n",
                                arrays, channels,
                                static_cast<unsigned long long>(cr.fingerprint),
                                static_cast<unsigned long long>(replay.fingerprint()));
                    ok = false;
                }
                // Gate (a): exact closed-form parity for the uncontended
                // single array (any channel count — one array never contends).
                if (arrays == 1) {
                    const auto& a0 = report.arrays[0];
                    if (a0.total_cycles != wr.closed_form || a0.fetch_stall_cycles != 0 ||
                        a0.wb_stall_cycles != 0) {
                        std::printf(
                            "  FAIL: 1a/%dch parity: cosim=%lld closed-form=%lld "
                            "fetch_stall=%lld wb_stall=%lld\n",
                            channels, static_cast<long long>(a0.total_cycles),
                            static_cast<long long>(wr.closed_form),
                            static_cast<long long>(a0.fetch_stall_cycles),
                            static_cast<long long>(a0.wb_stall_cycles));
                        ok = false;
                    }
                }

                std::printf(
                    "  %da/%dch makespan=%-9lld speedup=%.3f mem_busy=%.3f "
                    "bank_conf=%lld chan_conf=%lld mem_wait=%lld\n",
                    arrays, channels, static_cast<long long>(cr.makespan),
                    cr.speedup_vs_1, cr.mem_busy_frac,
                    static_cast<long long>(cr.bank_conflicts),
                    static_cast<long long>(cr.channel_conflicts),
                    static_cast<long long>(cr.mem_wait));
                wr.configs.push_back(cr);
            }
        }
        results.push_back(std::move(wr));
    }

    if (!json_path.empty()) {
        char date[32] = "unknown";
        const std::time_t now = std::time(nullptr);
        std::strftime(date, sizeof date, "%Y-%m-%d", std::gmtime(&now));
        std::ofstream os(json_path);
        os << "{\n"
           << "  \"bench\": \"multiarray\",\n"
           << "  \"schema_version\": 1,\n"
           << "  \"date\": \"" << date << "\",\n"
           << "  \"seed\": " << seed << ",\n"
           << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
           << "  \"parity_and_determinism\": " << (ok ? "true" : "false") << ",\n"
           << "  \"workloads\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            const WorkloadResult& wr = results[i];
            os << "    {\n"
               << "      \"name\": \"" << wr.name << "\",\n"
               << "      \"n\": " << wr.n << ",\n"
               << "      \"heads\": " << wr.heads << ",\n"
               << "      \"head_dim\": " << wr.head_dim << ",\n"
               << "      \"tiles_per_head\": " << wr.tiles_per_head << ",\n"
               << "      \"closed_form_cycles\": " << wr.closed_form << ",\n"
               << "      \"configs\": [\n";
            for (std::size_t j = 0; j < wr.configs.size(); ++j) {
                const ConfigResult& cr = wr.configs[j];
                os << "        {\"arrays\": " << cr.arrays
                   << ", \"channels\": " << cr.channels
                   << ", \"makespan_cycles\": " << cr.makespan
                   << ", \"max_array_cycles\": " << cr.max_array_cycles
                   << ", \"speedup_vs_1\": " << cr.speedup_vs_1
                   << ", \"mem_busy_frac\": " << cr.mem_busy_frac
                   << ", \"bank_conflicts\": " << cr.bank_conflicts
                   << ", \"channel_conflicts\": " << cr.channel_conflicts
                   << ", \"mem_wait_cycles\": " << cr.mem_wait
                   << ", \"fetch_stall_cycles\": " << cr.fetch_stall
                   << ", \"wb_stall_cycles\": " << cr.wb_stall << "}"
                   << (j + 1 < wr.configs.size() ? "," : "") << "\n";
            }
            os << "      ]\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        std::printf("wrote %s\n", json_path.c_str());
    }

    std::printf(ok ? "PARITY+DETERMINISM OK\n" : "GATE FAILED\n");
    return ok ? 0 : 1;
}
