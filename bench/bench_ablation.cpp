// Ablation studies over SALO's design choices (our additions; DESIGN.md E8):
//   1. column packing vs literal per-band tiling (the ViL utilization story)
//   2. PWL exponential segment count vs accuracy
//   3. reciprocal Newton-Raphson iterations vs accuracy and stage-3 latency
//   4. PE array geometry sweep (area/power/latency trade-off)
//   5. double buffering on/off (bandwidth sensitivity)
#include <iostream>

#include "common/table.hpp"
#include "model/salo_model.hpp"
#include "model/synthesis.hpp"
#include "numeric/pwl_exp.hpp"
#include "numeric/reciprocal.hpp"
#include "workload/workloads.hpp"

int main() {
    using namespace salo;

    std::cout << "=== Ablation 1: column packing vs per-band tiling ===\n\n";
    {
        AsciiTable t({"Workload", "Mode", "Tiles", "Occupancy", "Latency (ms)"});
        for (const auto& w : paper_workloads()) {
            for (const auto mode : {PackingMode::kPacked, PackingMode::kPerBand}) {
                SaloConfig config;
                config.schedule_options.packing = mode;
                const auto est = estimate_layer(w, config);
                t.add_row({w.name,
                           mode == PackingMode::kPacked ? "packed" : "per-band",
                           std::to_string(est.schedule.total_tiles()),
                           fmt(est.schedule.slot_occupancy(), 3),
                           fmt(est.latency_ms, 3)});
            }
        }
        t.print();
        std::cout << "(packing narrow 15-wide ViL bands is what sustains the paper's\n"
                     " >75% utilization; Longformer's 512-wide window is unaffected)\n\n";
    }

    std::cout << "=== Ablation 2: PWL exponential segments ===\n\n";
    {
        AsciiTable t({"Segments", "LUT entries", "max rel err [-4,8]", "max rel err [0,ln2)"});
        for (int seg_bits : {1, 2, 3, 4, 5, 6}) {
            PwlExp::Config cfg;
            cfg.seg_bits = seg_bits;
            const PwlExp unit(cfg);
            t.add_row({std::to_string(1 << seg_bits), std::to_string(2 * (1 << seg_bits)),
                       fmt(unit.max_rel_error(-4.0, 8.0) * 100.0, 3) + "%",
                       fmt(unit.max_rel_error(0.01, 0.69) * 100.0, 4) + "%"});
        }
        t.print();
        std::cout << "(the paper's Softermax-style unit uses a small LUT; 8 segments\n"
                     " already reach input-quantization-limited accuracy)\n\n";
    }

    std::cout << "=== Ablation 3: reciprocal Newton-Raphson iterations ===\n\n";
    {
        AsciiTable t({"NR iters", "Stage-3 latency (cycles)", "max rel err"});
        for (int iters : {0, 1, 2, 3}) {
            Reciprocal::Config cfg;
            cfg.nr_iters = iters;
            const Reciprocal unit(cfg);
            t.add_row({std::to_string(iters), std::to_string(cfg.latency()),
                       fmt(unit.max_rel_error(0.01, 1000.0) * 100.0, 4) + "%"});
        }
        t.print();
        std::cout << "\n";
    }

    std::cout << "=== Ablation 4: PE array geometry (Longformer layer) ===\n\n";
    {
        AsciiTable t({"Array", "PEs", "Area (mm^2)", "Power (mW)", "Latency (ms)",
                      "Occupancy", "Energy (mJ)"});
        const auto w = longformer_base_4096();
        struct Geo {
            int rows, cols;
        };
        for (const Geo g : {Geo{16, 16}, Geo{16, 32}, Geo{32, 32}, Geo{32, 64},
                            Geo{64, 64}}) {
            SaloConfig config;
            config.geometry.rows = g.rows;
            config.geometry.cols = g.cols;
            const auto est = estimate_layer(w, config);
            const auto synth = synthesize(config.geometry);
            t.add_row({std::to_string(g.rows) + "x" + std::to_string(g.cols),
                       std::to_string(config.geometry.total_pes()),
                       fmt(synth.total_area_mm2(), 2), fmt(synth.total_power_mw(), 1),
                       fmt(est.latency_ms, 3), fmt(est.schedule.slot_occupancy(), 3),
                       fmt(synth.total_power_w() * est.latency_ms, 3)});
        }
        t.print();
        std::cout << "(32x32 is the paper's sweet spot: bigger arrays waste occupancy\n"
                     " at sequence/window edges and in the softmax stages)\n\n";
    }

    std::cout << "=== Ablation 5: double buffering and bus width (Longformer) ===\n\n";
    {
        AsciiTable t({"Bus (B/cycle)", "Double buffer", "Latency (ms)"});
        const auto w = longformer_base_4096();
        for (int bus : {16, 32, 64, 128}) {
            for (bool dbuf : {true, false}) {
                SaloConfig config;
                config.bus_bytes_per_cycle = bus;
                config.double_buffer = dbuf;
                const auto est = estimate_layer(w, config);
                t.add_row({std::to_string(bus), dbuf ? "on" : "off",
                           fmt(est.latency_ms, 3)});
            }
        }
        t.print();
        std::cout << "\n";
    }

    std::cout << "=== Ablation 6: inter-tile softmax-stage pipelining ===\n\n";
    {
        AsciiTable t({"Workload", "Pipelining", "Latency (ms)", "Gain"});
        for (const auto& w : paper_workloads()) {
            SaloConfig off;
            SaloConfig on;
            on.tile_pipelining = true;
            const double t_off = estimate_layer(w, off).latency_ms;
            const double t_on = estimate_layer(w, on).latency_ms;
            t.add_row({w.name, "off", fmt(t_off, 3), "-"});
            t.add_row({w.name, "on", fmt(t_on, 3),
                       fmt((t_off / t_on - 1.0) * 100.0, 1) + "%"});
        }
        t.print();
        std::cout << "(stage 3 uses the adder ripple and the shared reciprocal unit,\n"
                     " not the MACs, so the next tile's systolic pass can run under it)\n";
    }
    return 0;
}
